// Command grloadgen drives a running grserved instance with mixed scenario
// traffic and prints a latency/throughput table. It is the service's proof
// point and the input for performance tracking: scenarios cover the three
// realization families with varying n and per-request seeds, so the
// server-side cache is exercised but not saturated.
//
// Usage:
//
//	grloadgen                                              # 16 conns, 200 reqs
//	grloadgen -c 64 -requests 500 -mix degree,tree,connectivity
//	grloadgen -mix degree:3,sweep:1 -n 96 -edges
//	grloadgen -async -requests 200                         # exercise /v1/jobs
//	grloadgen -trace-ids                                   # verify X-Request-Id round-trips
//
// Mix entries are scenario[:weight] with scenarios degree, tree,
// connectivity, and sweep. With -trace-ids, every request carries a
// deterministic X-Request-Id and the tool asserts the server echoes it back
// (and, for async jobs, persists it into the job document) — turning the
// load run into an end-to-end check of the tracing path. The latency table's
// p50/p95/p99 columns are estimated from the same fixed-bucket histogram
// type the server exports on /metrics, so client-side and server-side
// quantiles are directly comparable. With -async, every other request is driven
// through the asynchronous job API instead of the blocking endpoints —
// rotating across submit→poll, submit→SSE-stream, and submit→cancel flows —
// and reported as separate scenario+async rows, so end-to-end job latency
// lands in the same table as the sync latencies. The exit status is non-zero
// if any request fails, so the tool doubles as a CI end-to-end check.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"graphrealize"
	"graphrealize/internal/gen"
	"graphrealize/internal/jobs"
	"graphrealize/internal/obs"
	"graphrealize/internal/wire"
)

type scenario struct {
	name string
	path string
	body func(n int, seed int64) any
	// job builds the POST /v1/jobs body for the async flows; nil means the
	// scenario has no async form (sweep) and always runs synchronously.
	job func(n int, seed int64) any
}

func scenarios(variantEvery int, scheduler string) map[string]scenario {
	// opts assembles one request's options map; a non-empty -scheduler is
	// stamped onto every request so a whole load run can target one driver.
	opts := func(kv map[string]any) map[string]any {
		if scheduler != "" {
			kv["scheduler"] = scheduler
		}
		return kv
	}
	return map[string]scenario{
		"degree": {
			name: "degree",
			path: "/v1/realize/degree",
			body: func(n int, seed int64) any {
				variant := ""
				if variantEvery > 0 && seed%int64(variantEvery) == 0 {
					variant = "explicit"
				}
				return map[string]any{
					"sequence": gen.FromRandomGraph(n, 8.0/float64(n), seed),
					"variant":  variant,
					"options":  opts(map[string]any{"seed": seed}),
				}
			},
			job: func(n int, seed int64) any {
				kind := "degrees"
				if variantEvery > 0 && seed%int64(variantEvery) == 0 {
					kind = "degrees-explicit"
				}
				return map[string]any{
					"kind":     kind,
					"sequence": gen.FromRandomGraph(n, 8.0/float64(n), seed),
					"options":  opts(map[string]any{"seed": seed}),
				}
			},
		},
		"tree": {
			name: "tree",
			path: "/v1/realize/tree",
			body: func(n int, seed int64) any {
				variant := "chain"
				if seed%2 == 0 {
					variant = "mindiam"
				}
				return map[string]any{
					"sequence": gen.TreeSequence(n, seed),
					"variant":  variant,
					"options":  opts(map[string]any{"seed": seed}),
				}
			},
			job: func(n int, seed int64) any {
				kind := "chain-tree"
				if seed%2 == 0 {
					kind = "min-diam-tree"
				}
				return map[string]any{
					"kind":     kind,
					"sequence": gen.TreeSequence(n, seed),
					"options":  opts(map[string]any{"seed": seed}),
				}
			},
		},
		"connectivity": {
			name: "connectivity",
			path: "/v1/realize/connectivity",
			body: func(n int, seed int64) any {
				return map[string]any{
					"sequence": gen.UniformRho(n, 4, seed),
					"options":  opts(map[string]any{"seed": seed, "model": "ncc1"}),
				}
			},
			job: func(n int, seed int64) any {
				return map[string]any{
					"kind":     "connectivity",
					"sequence": gen.UniformRho(n, 4, seed),
					"options":  opts(map[string]any{"seed": seed, "model": "ncc1"}),
				}
			},
		},
		"sweep": {
			name: "sweep",
			path: "/v1/sweep",
			body: func(n int, seed int64) any {
				req := map[string]any{
					"kind":       "degrees",
					"sequence":   gen.FromRandomGraph(n, 8.0/float64(n), seed),
					"seed_count": 4,
					"seed_start": seed,
				}
				if scheduler != "" {
					req["options"] = opts(map[string]any{})
				}
				return req
			},
		},
	}
}

type sample struct {
	scenario string
	latency  time.Duration
	bytes    int64 // response body size (bytes on the wire)
	err      string
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "base URL of the grserved instance")
	conc := flag.Int("c", 16, "concurrent connections")
	requests := flag.Int("requests", 200, "total requests to send")
	mixFlag := flag.String("mix", "degree,tree,connectivity", "scenario[:weight] list")
	n := flag.Int("n", 48, "base sequence length (scenarios vary it ±50%)")
	seed := flag.Int64("seed", 1, "first per-request seed")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request client timeout")
	edges := flag.Bool("edges", false, "request edge lists in responses (heavier payloads)")
	wireFmt := flag.Bool("wire", false, "negotiate application/x-graphwire responses on the sync endpoints (async flows stay JSON); streams are decoded and validated")
	async := flag.Bool("async", false, "drive every other request through the async job API (submit/poll/stream/cancel)")
	traceIDs := flag.Bool("trace-ids", false, "send a deterministic X-Request-Id per request and verify the server echoes it")
	scheduler := flag.String("scheduler", "", "simulator driver to request: barrier, pool or flat (empty = server default)")
	flag.Parse()

	if *requests <= 0 || *conc <= 0 {
		fmt.Fprintln(os.Stderr, "grloadgen: -requests and -c must be positive")
		os.Exit(2)
	}
	if _, err := graphrealize.ParseScheduler(*scheduler); err != nil {
		fmt.Fprintf(os.Stderr, "grloadgen: %v\n", err)
		os.Exit(2)
	}
	all := scenarios(5, *scheduler)
	var slots []scenario
	for _, entry := range strings.Split(*mixFlag, ",") {
		name, weightStr, hasWeight := strings.Cut(strings.TrimSpace(entry), ":")
		sc, ok := all[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "grloadgen: unknown scenario %q (want degree, tree, connectivity, or sweep)\n", name)
			os.Exit(2)
		}
		weight := 1
		if hasWeight {
			w, err := strconv.Atoi(weightStr)
			if err != nil || w < 1 {
				fmt.Fprintf(os.Stderr, "grloadgen: bad weight in %q\n", entry)
				os.Exit(2)
			}
			weight = w
		}
		for i := 0; i < weight; i++ {
			slots = append(slots, sc)
		}
	}
	if len(slots) == 0 {
		fmt.Fprintln(os.Stderr, "grloadgen: empty -mix")
		os.Exit(2)
	}
	// Three sizes around -n keep the working set diverse without letting a
	// single huge job dominate the tail.
	sizes := []int{max(8, *n/2), max(8, *n), max(8, *n+*n/2)}

	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        *conc,
			MaxIdleConnsPerHost: *conc,
		},
	}
	base := strings.TrimRight(*addr, "/")

	var next atomic.Int64
	results := make([][]sample, *conc)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(*requests) {
					return
				}
				sc := slots[i%int64(len(slots))]
				// Index sizes (and the async split) by the mix cycle count so
				// scenario, size, and sync/async mode all decorrelate even
				// when len(slots) == len(sizes).
				cycle := i / int64(len(slots))
				nn := sizes[cycle%int64(len(sizes))]
				traceID := ""
				if *traceIDs {
					traceID = fmt.Sprintf("grloadgen-%06d", i)
				}
				if *async && sc.job != nil && cycle%2 == 1 {
					results[w] = append(results[w], runAsync(client, base, sc, nn, *seed+i, cycle, *timeout, *edges, traceID))
					continue
				}
				body := sc.body(nn, *seed+i)
				if m, ok := body.(map[string]any); ok && !*edges && sc.name != "sweep" {
					m["omit_edges"] = true
				}
				payload, err := json.Marshal(body)
				if err != nil {
					results[w] = append(results[w], sample{scenario: sc.name, err: err.Error()})
					continue
				}
				results[w] = append(results[w], runSync(client, base, sc, payload, *wireFmt, traceID))
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	var samples []sample
	for _, rs := range results {
		samples = append(samples, rs...)
	}
	report(os.Stdout, samples, wall)
	fetchStats(client, base)

	failures := 0
	for _, s := range samples {
		if s.err != "" {
			failures++
			if failures <= 5 {
				fmt.Fprintf(os.Stderr, "grloadgen: %s: %s\n", s.scenario, s.err)
			}
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "grloadgen: %d/%d requests failed\n", failures, len(samples))
		os.Exit(1)
	}
}

// runSync issues one synchronous request and measures latency plus bytes
// on the wire. With -wire the request negotiates application/x-graphwire
// and the response stream is fully decoded — a truncated or corrupt stream
// is a request failure, so the tool end-to-end-checks the binary path the
// same way it checks JSON statuses. A non-empty traceID is sent as
// X-Request-Id and must come back verbatim.
func runSync(client *http.Client, base string, sc scenario, payload []byte, wireFmt bool, traceID string) sample {
	req, err := http.NewRequest(http.MethodPost, base+sc.path, bytes.NewReader(payload))
	if err != nil {
		return sample{scenario: sc.name, err: err.Error()}
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		req.Header.Set(obs.HeaderRequestID, traceID)
	}
	if wireFmt {
		req.Header.Set("Accept", wire.MediaType)
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return sample{scenario: sc.name, latency: time.Since(t0), err: err.Error()}
	}
	defer resp.Body.Close()
	s := sample{scenario: sc.name}
	switch {
	case traceID != "" && resp.Header.Get(obs.HeaderRequestID) != traceID:
		io.Copy(io.Discard, resp.Body)
		s.err = fmt.Sprintf("trace ID not echoed: sent %q, got %q", traceID, resp.Header.Get(obs.HeaderRequestID))
	case resp.StatusCode != http.StatusOK:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		s.err = fmt.Sprintf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	case wireFmt && resp.Header.Get("Content-Type") == wire.MediaType:
		counted := &countingReader{r: resp.Body}
		if _, err := wire.Decode(counted); err != nil {
			s.err = fmt.Sprintf("graphwire stream: %v", err)
		}
		s.bytes = counted.n
	default:
		if wireFmt {
			s.err = fmt.Sprintf("server ignored Accept: got Content-Type %q", resp.Header.Get("Content-Type"))
		}
		n, _ := io.Copy(io.Discard, resp.Body)
		s.bytes = n
	}
	s.latency = time.Since(t0)
	return s
}

// countingReader counts the bytes a decoder actually consumes.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// report prints the per-scenario and total latency/throughput table.
func report(out io.Writer, samples []sample, wall time.Duration) {
	byScenario := map[string][]sample{}
	var order []string
	for _, s := range samples {
		if _, seen := byScenario[s.scenario]; !seen {
			order = append(order, s.scenario)
		}
		byScenario[s.scenario] = append(byScenario[s.scenario], s)
	}
	sort.Strings(order)

	tw := tabwriter.NewWriter(out, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "scenario\treqs\terrs\tmean\tp50\tp95\tp99\tmax\tresp-B")
	row := func(name string, ss []sample) {
		// Quantiles come from the same fixed-bucket histogram the server
		// exports on /metrics, so a table row is directly comparable to a
		// histogram_quantile over graphrealize_http_request_seconds.
		hist := obs.NewHistogram(obs.DefaultLatencyBuckets)
		var sum, maxLat time.Duration
		var totalBytes, counted int64
		ok, errs := 0, 0
		for _, s := range ss {
			if s.err != "" {
				errs++
				continue
			}
			ok++
			hist.ObserveDuration(s.latency)
			sum += s.latency
			maxLat = max(maxLat, s.latency)
			if s.bytes > 0 {
				totalBytes += s.bytes
				counted++
			}
		}
		if ok == 0 {
			fmt.Fprintf(tw, "%s\t%d\t%d\t-\t-\t-\t-\t-\t-\n", name, len(ss), errs)
			return
		}
		respB := "-"
		if counted > 0 {
			respB = fmt.Sprintf("%d", totalBytes/counted)
		}
		snap := hist.Snapshot()
		q := func(p float64) time.Duration {
			return time.Duration(snap.Quantile(p) * float64(time.Second))
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%s\t%s\t%s\t%s\t%s\n",
			name, len(ss), errs,
			fmtMS(sum/time.Duration(ok)),
			fmtMS(q(0.50)), fmtMS(q(0.95)), fmtMS(q(0.99)),
			fmtMS(maxLat), respB)
	}
	for _, name := range order {
		row(name, byScenario[name])
	}
	row("TOTAL", samples)
	tw.Flush()
	var totalBytes int64
	for _, s := range samples {
		totalBytes += s.bytes
	}
	fmt.Fprintf(out, "wall %.2fs, throughput %.1f req/s, %d bytes on the wire\n",
		wall.Seconds(), float64(len(samples))/wall.Seconds(), totalBytes)
}

// fetchStats surfaces the server-side Runner counters after the run.
func fetchStats(client *http.Client, base string) {
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var st struct {
		Submitted int64   `json:"submitted"`
		Rejected  int64   `json:"rejected"`
		CacheHits int64   `json:"cache_hits"`
		AvgWaitMS float64 `json:"avg_wait_ms"`
		AvgRunMS  float64 `json:"avg_run_ms"`
		// Cluster is present when the target is a coordinator (CLUSTER.md
		// §7.1): the load just generated was sharded over these workers.
		Cluster *struct {
			Alive     int   `json:"alive"`
			Suspect   int   `json:"suspect"`
			Dead      int   `json:"dead"`
			Failovers int64 `json:"failovers"`
			Proxied   int64 `json:"proxied"`
			Workers   []struct {
				Name string `json:"name"`
				Load struct {
					Executed  int64 `json:"executed"`
					CacheHits int64 `json:"cache_hits"`
				} `json:"load"`
			} `json:"workers"`
		} `json:"cluster"`
	}
	if json.NewDecoder(resp.Body).Decode(&st) == nil {
		fmt.Printf("server: submitted=%d rejected=%d cache_hits=%d avg_wait=%.1fms avg_run=%.1fms\n",
			st.Submitted, st.Rejected, st.CacheHits, st.AvgWaitMS, st.AvgRunMS)
		if c := st.Cluster; c != nil {
			fmt.Printf("cluster: %d alive / %d suspect / %d dead, proxied=%d failovers=%d\n",
				c.Alive, c.Suspect, c.Dead, c.Proxied, c.Failovers)
			for _, w := range c.Workers {
				fmt.Printf("  worker %s: executed=%d cache_hits=%d\n", w.Name, w.Load.Executed, w.Load.CacheHits)
			}
		}
	}
}

// jobView is the slice of the job JSON the async flows need.
type jobView struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Round   int    `json:"round"`
	Error   string `json:"error"`
	TraceID string `json:"trace_id"`
}

// terminalState resolves a wire state against the jobs package's own
// lifecycle vocabulary, so this client cannot fall out of sync with the
// server when states are added.
func terminalState(s string) bool {
	st, ok := jobs.ParseState(s)
	return ok && st.Terminal()
}

// runAsync drives one request through the asynchronous job API and reports
// the end-to-end latency from submission to observed terminal state. The
// flow rotates deterministically over the (odd, async) mix cycles: half
// submit→poll, 3/8 submit→stream SSE progress (asserting monotone rounds),
// and 1/8 submit→cancel (accepting "canceled", or "done" if the job won the
// race). Like the sync path, result payloads omit edge lists unless -edges;
// a non-empty traceID must be echoed in the 202 header and persisted into
// the job document itself.
func runAsync(client *http.Client, base string, sc scenario, n int, seed, cycle int64, timeout time.Duration, edges bool, traceID string) sample {
	name := sc.name + "+async"
	payload, err := json.Marshal(sc.job(n, seed))
	if err != nil {
		return sample{scenario: name, err: err.Error()}
	}
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(payload))
	if err != nil {
		return sample{scenario: name, err: err.Error()}
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		req.Header.Set(obs.HeaderRequestID, traceID)
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return sample{scenario: name, err: err.Error()}
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return sample{scenario: name, latency: time.Since(t0),
			err: fmt.Sprintf("submit HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))}
	}
	if traceID != "" && resp.Header.Get(obs.HeaderRequestID) != traceID {
		return sample{scenario: name, latency: time.Since(t0),
			err: fmt.Sprintf("trace ID not echoed: sent %q, got %q", traceID, resp.Header.Get(obs.HeaderRequestID))}
	}
	var job jobView
	if err := json.Unmarshal(msg, &job); err != nil || job.ID == "" {
		return sample{scenario: name, latency: time.Since(t0), err: fmt.Sprintf("bad submit body %q", msg)}
	}
	if traceID != "" && job.TraceID != traceID {
		return sample{scenario: name, latency: time.Since(t0),
			err: fmt.Sprintf("job %s lost its trace ID: sent %q, job carries %q", job.ID, traceID, job.TraceID)}
	}

	deadline := time.Now().Add(timeout)
	if timeout <= 0 {
		deadline = time.Now().Add(24 * time.Hour) // -timeout 0: effectively unbounded
	}
	var final jobView
	var flowErr error
	wantCanceled := false
	switch {
	case cycle%16 == 15:
		wantCanceled = true
		final, flowErr = cancelFlow(client, base, job.ID, deadline, edges)
	case cycle%4 == 3:
		final, flowErr = streamFlow(client, base, job.ID, deadline)
	default:
		final, flowErr = pollFlow(client, base, job.ID, deadline, edges)
	}
	s := sample{scenario: name, latency: time.Since(t0)}
	switch {
	case flowErr != nil:
		s.err = flowErr.Error()
	case final.State == "done":
	case wantCanceled && final.State == "canceled":
	default:
		s.err = fmt.Sprintf("job ended %s: %s", final.State, final.Error)
	}
	return s
}

// pollFlow GETs the job until a terminal state.
func pollFlow(client *http.Client, base, id string, deadline time.Time, edges bool) (jobView, error) {
	url := base + "/v1/jobs/" + id
	if !edges {
		url += "?omit_edges=1"
	}
	// Exponential backoff keeps latency resolution for short jobs without a
	// sustained poll storm perturbing the latencies under measurement.
	wait := 5 * time.Millisecond
	for {
		resp, err := client.Get(url)
		if err != nil {
			return jobView{}, err
		}
		// Read the whole body: a done job's -edges payload can exceed any
		// fixed cap, and a truncated document would fail to parse.
		msg, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return jobView{}, err
		}
		if resp.StatusCode != http.StatusOK {
			return jobView{}, fmt.Errorf("poll HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
		}
		var job jobView
		if err := json.Unmarshal(msg, &job); err != nil {
			return jobView{}, fmt.Errorf("bad poll body: %v", err)
		}
		if terminalState(job.State) {
			return job, nil
		}
		if time.Now().After(deadline) {
			return job, fmt.Errorf("job %s still %s at deadline", id, job.State)
		}
		time.Sleep(wait)
		if wait *= 2; wait > 250*time.Millisecond {
			wait = 250 * time.Millisecond
		}
	}
}

// streamFlow consumes the SSE event stream to the terminal event, checking
// that reported rounds never regress. The deadline bounds the whole stream
// even when the HTTP client itself has no timeout (-timeout 0).
func streamFlow(client *http.Client, base, id string, deadline time.Time) (jobView, error) {
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return jobView{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return jobView{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return jobView{}, fmt.Errorf("events HTTP %d", resp.StatusCode)
	}
	var last jobView
	lastRound := -1
	sawEvent := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev jobView
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			return jobView{}, fmt.Errorf("bad event payload: %v", err)
		}
		if ev.Round < lastRound {
			return jobView{}, fmt.Errorf("progress went backwards: round %d after %d", ev.Round, lastRound)
		}
		lastRound = ev.Round
		last = ev
		sawEvent = true
		if terminalState(ev.State) {
			return last, nil
		}
	}
	if err := sc.Err(); err != nil {
		return jobView{}, err
	}
	if !sawEvent {
		return jobView{}, fmt.Errorf("event stream for %s ended without events", id)
	}
	return last, fmt.Errorf("event stream for %s ended before a terminal event (last %s)", id, last.State)
}

// cancelFlow cancels the job and waits for it to settle. The job may finish
// before the DELETE lands; the caller accepts done as well as canceled.
func cancelFlow(client *http.Client, base, id string, deadline time.Time, edges bool) (jobView, error) {
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+id, nil)
	if err != nil {
		return jobView{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return jobView{}, err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return jobView{}, fmt.Errorf("cancel HTTP %d", resp.StatusCode)
	}
	return pollFlow(client, base, id, deadline, edges)
}

func fmtMS(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
}
