// Command benchgate compares two `go test -bench` output files and fails on
// regressions: the CI benchmark gate. It prints every common benchmark's
// base/head medians, writes a machine-readable JSON report, and exits
// non-zero only when a benchmark matching -match slows down by more than
// -threshold percent. Use benchstat alongside it for proper statistics; the
// gate is deliberately a blunt, dependency-free threshold.
//
// Usage:
//
//	benchgate -base base.txt -head head.txt
//	benchgate -base base.txt -head head.txt -threshold 30 -match BatchRealization -json bench.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"text/tabwriter"

	"graphrealize/internal/benchcmp"
)

func main() {
	basePath := flag.String("base", "", "bench output of the merge base (required)")
	headPath := flag.String("head", "", "bench output of the PR head (required)")
	threshold := flag.Float64("threshold", 30, "fail when a matching benchmark slows down by more than this percent")
	match := flag.String("match", "BenchmarkBatchRealization", "regexp selecting the gated benchmarks")
	jsonPath := flag.String("json", "", "write the full comparison as JSON to this path")
	flag.Parse()

	if *basePath == "" || *headPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -base and -head are required")
		os.Exit(2)
	}
	gate, err := regexp.Compile(*match)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: bad -match: %v\n", err)
		os.Exit(2)
	}
	base := mustParse(*basePath)
	head := mustParse(*headPath)
	deltas := benchcmp.Compare(base, head)
	if len(deltas) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no common benchmarks between base and head")
		os.Exit(2)
	}
	regressions := benchcmp.Regressions(deltas, gate, *threshold)

	tw := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tbase ns/op\thead ns/op\tdelta\tgated")
	for _, d := range deltas {
		gated := ""
		if gate.MatchString(d.Name) {
			gated = "yes"
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%+.1f%%\t%s\n", d.Name, d.BaseNs, d.HeadNs, d.Pct, gated)
	}
	tw.Flush()

	if *jsonPath != "" {
		report := struct {
			ThresholdPct float64          `json:"threshold_pct"`
			Match        string           `json:"match"`
			Deltas       []benchcmp.Delta `json:"deltas"`
			Regressions  []benchcmp.Delta `json:"regressions"`
		}{*threshold, *match, deltas, regressions}
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
	}

	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d benchmark(s) regressed more than %.0f%%:\n", len(regressions), *threshold)
		for _, d := range regressions {
			fmt.Fprintf(os.Stderr, "  %s: %.0f -> %.0f ns/op (%+.1f%%)\n", d.Name, d.BaseNs, d.HeadNs, d.Pct)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: OK — no %s regression above %.0f%% (%d benchmarks compared)\n",
		*match, *threshold, len(deltas))
}

func mustParse(path string) map[string][]float64 {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	defer f.Close()
	out, err := benchcmp.Parse(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", path, err)
		os.Exit(2)
	}
	return out
}
