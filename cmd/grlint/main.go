// Command grlint runs the repo's static invariant checks (DESIGN.md §12)
// over the given package patterns and exits non-zero on any diagnostic.
//
//	go run ./cmd/grlint ./...          # the whole tree (what `make lint` and CI run)
//	go run ./cmd/grlint ./internal/ncc # one package
//	go run ./cmd/grlint -list          # print the check catalog
//
// Exit codes: 0 clean, 1 diagnostics reported, 2 load failure. The suite is
// dependency-free — go/parser + go/types + the source importer, no x/tools —
// so `make lint` needs nothing beyond the Go toolchain.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"graphrealize/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the check catalog and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: grlint [-list] [patterns...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	checks := lint.DefaultChecks()
	if *list {
		for _, c := range checks {
			fmt.Printf("%s  %s\n", c.ID(), c.Doc())
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fail(err)
	}
	ld, err := lint.NewLoader(cwd)
	if err != nil {
		fail(err)
	}
	pkgs, err := ld.Load(patterns)
	if err != nil {
		fail(err)
	}
	for _, p := range pkgs {
		// Type-check problems don't stop the run (checks operate on the
		// partial type info), but they can mask violations, so surface them.
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "grlint: warning: %s: %v\n", p.PkgPath, terr)
		}
	}

	diags := lint.Run(pkgs, checks)
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(cwd, file); err == nil && !filepath.IsAbs(rel) {
			file = rel
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", file, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "grlint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "grlint: %v\n", err)
	os.Exit(2)
}
