// Command connreal builds an overlay meeting pairwise edge-connectivity
// thresholds (§6 of the paper) and reports the 2-approximation quality and
// sampled Menger verification. With -seeds k it runs a deterministic
// multi-seed sweep through the batch Runner (shared result cache, per-job
// seeding) and reports per-seed costs.
//
// Usage:
//
//	connreal -n 32 -maxrho 5                 # NCC0 explicit (Thm 18)
//	connreal -n 32 -maxrho 5 -ncc1           # NCC1 implicit (Thm 17)
//	connreal -rho 3,3,2,2,1,1
//	connreal -n 64 -seeds 8 -workers 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"graphrealize"
	"graphrealize/internal/gen"
)

func main() {
	rhoFlag := flag.String("rho", "", "comma-separated threshold vector")
	n := flag.Int("n", 32, "node count for the generated vector")
	maxRho := flag.Int("maxrho", 4, "maximum threshold for the generated vector")
	ncc1 := flag.Bool("ncc1", false, "run the NCC1 O~(1) algorithm (Thm 17) instead of NCC0 (Thm 18)")
	seed := flag.Int64("seed", 1, "deterministic seed (first of the sweep)")
	seeds := flag.Int("seeds", 1, "number of consecutive seeds to sweep")
	workers := flag.Int("workers", 0, "parallel jobs for the sweep (0 = GOMAXPROCS)")
	verify := flag.Int("verify", 50, "number of sampled pairs to verify by max-flow (0 = skip)")
	flag.Parse()

	var rho []int
	if *rhoFlag != "" {
		for _, s := range strings.Split(*rhoFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintf(os.Stderr, "connreal: bad entry %q\n", s)
				os.Exit(2)
			}
			rho = append(rho, v)
		}
	} else {
		rho = gen.UniformRho(*n, *maxRho, *seed)
	}

	opt := &graphrealize.Options{Seed: *seed}
	if *ncc1 {
		opt.Model = graphrealize.NCC1
	}
	if *seeds < 1 {
		*seeds = 1
	}
	seedList := make([]int64, *seeds)
	for i := range seedList {
		seedList[i] = *seed + int64(i)
	}
	// Route through the Runner like degreal/benchtab: deterministic per-job
	// seeding and the shared result cache, plus parallelism for sweeps.
	jobs := graphrealize.SweepSeeds(graphrealize.Job{Kind: graphrealize.JobConnectivity, Seq: rho, Opt: opt}, seedList)
	results := graphrealize.NewRunner(*workers).RealizeAll(jobs)
	first := results[0]
	if first.Err != nil {
		fmt.Fprintln(os.Stderr, "connreal:", first.Err)
		os.Exit(1)
	}
	g, stats := first.Graph, first.Stats
	lb := graphrealize.ConnectivityLowerBound(rho)
	fmt.Printf("model: %s\n", map[bool]string{false: "NCC0 (explicit, Thm 18)", true: "NCC1 (implicit, Thm 17)"}[*ncc1])
	fmt.Printf("realized: m=%d  LB=%d  approx=%.2f (bound 2.00)\n", g.M(), lb, float64(g.M())/float64(lb))
	fmt.Printf("cost: %s\n", stats)
	if *seeds > 1 {
		for i, res := range results {
			if res.Err != nil {
				fmt.Fprintf(os.Stderr, "connreal: seed %d: %v\n", seedList[i], res.Err)
				os.Exit(1)
			}
			fmt.Printf("seed=%-4d m=%-5d rounds=%-6d msgs=%-8d maxRecv=%d\n",
				seedList[i], res.Graph.M(), res.Stats.Rounds, res.Stats.Messages, res.Stats.MaxRecv)
		}
	}

	if *verify > 0 {
		nn := len(rho)
		checked, failed := 0, 0
		for i := 0; i < *verify; i++ {
			u := int(int64(i)*2654435761) % nn
			v := (u + 1 + int(int64(i)*40503)%(nn-1)) % nn
			if u == v {
				continue
			}
			want := rho[u]
			if rho[v] < want {
				want = rho[v]
			}
			got := g.EdgeConnectivity(u, v)
			checked++
			if got < want {
				failed++
				fmt.Printf("VIOLATION: Conn(%d,%d)=%d < %d\n", u, v, got, want)
			}
		}
		fmt.Printf("verified %d sampled pairs by max-flow: %d violations\n", checked, failed)
	}
}
