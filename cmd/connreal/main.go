// Command connreal builds an overlay meeting pairwise edge-connectivity
// thresholds (§6 of the paper) and reports the 2-approximation quality and
// sampled Menger verification.
//
// Usage:
//
//	connreal -n 32 -maxrho 5                 # NCC0 explicit (Thm 18)
//	connreal -n 32 -maxrho 5 -ncc1           # NCC1 implicit (Thm 17)
//	connreal -rho 3,3,2,2,1,1
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"graphrealize"
	"graphrealize/internal/gen"
)

func main() {
	rhoFlag := flag.String("rho", "", "comma-separated threshold vector")
	n := flag.Int("n", 32, "node count for the generated vector")
	maxRho := flag.Int("maxrho", 4, "maximum threshold for the generated vector")
	ncc1 := flag.Bool("ncc1", false, "run the NCC1 O~(1) algorithm (Thm 17) instead of NCC0 (Thm 18)")
	seed := flag.Int64("seed", 1, "deterministic seed")
	verify := flag.Int("verify", 50, "number of sampled pairs to verify by max-flow (0 = skip)")
	flag.Parse()

	var rho []int
	if *rhoFlag != "" {
		for _, s := range strings.Split(*rhoFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintf(os.Stderr, "connreal: bad entry %q\n", s)
				os.Exit(2)
			}
			rho = append(rho, v)
		}
	} else {
		rho = gen.UniformRho(*n, *maxRho, *seed)
	}

	opt := &graphrealize.Options{Seed: *seed}
	if *ncc1 {
		opt.Model = graphrealize.NCC1
	}
	g, stats, err := graphrealize.RealizeConnectivity(rho, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "connreal:", err)
		os.Exit(1)
	}
	lb := graphrealize.ConnectivityLowerBound(rho)
	fmt.Printf("model: %s\n", map[bool]string{false: "NCC0 (explicit, Thm 18)", true: "NCC1 (implicit, Thm 17)"}[*ncc1])
	fmt.Printf("realized: m=%d  LB=%d  approx=%.2f (bound 2.00)\n", g.M(), lb, float64(g.M())/float64(lb))
	fmt.Printf("cost: %s\n", stats)

	if *verify > 0 {
		nn := len(rho)
		checked, failed := 0, 0
		for i := 0; i < *verify; i++ {
			u := int(int64(i)*2654435761) % nn
			v := (u + 1 + int(int64(i)*40503)%(nn-1)) % nn
			if u == v {
				continue
			}
			want := rho[u]
			if rho[v] < want {
				want = rho[v]
			}
			got := g.EdgeConnectivity(u, v)
			checked++
			if got < want {
				failed++
				fmt.Printf("VIOLATION: Conn(%d,%d)=%d < %d\n", u, v, got, want)
			}
		}
		fmt.Printf("verified %d sampled pairs by max-flow: %d violations\n", checked, failed)
	}
}
