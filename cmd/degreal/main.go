// Command degreal realizes a degree sequence as a distributed overlay and
// prints the realization plus its NCC cost. With -seeds k it runs a
// deterministic multi-seed sweep through the concurrent batch runner and
// reports per-seed costs plus aggregates.
//
// Usage:
//
//	degreal -seq 3,3,2,2,2,2              # explicit sequence
//	degreal -n 64 -family regular -d 6    # generated family
//	degreal -n 50 -family powerlaw -explicit -print-edges
//	degreal -n 256 -seeds 16 -workers 8   # multi-seed sweep on 8 cores
//
// Families: regular (needs -d), random (G(n,p) degrees, -p), powerlaw,
// starheavy, bimodal.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"graphrealize"
	"graphrealize/internal/gen"
	"graphrealize/internal/seq"
)

func main() {
	seqFlag := flag.String("seq", "", "comma-separated degree sequence")
	n := flag.Int("n", 32, "node count for generated families")
	family := flag.String("family", "random", "regular|random|powerlaw|starheavy|bimodal")
	d := flag.Int("d", 4, "degree for -family regular")
	p := flag.Float64("p", 0.2, "edge probability for -family random")
	seed := flag.Int64("seed", 1, "deterministic seed (first of the sweep)")
	seeds := flag.Int("seeds", 1, "number of consecutive seeds to sweep")
	workers := flag.Int("workers", 0, "parallel jobs for the sweep (0 = GOMAXPROCS)")
	explicit := flag.Bool("explicit", false, "convert to an explicit realization (Thm 12)")
	envelope := flag.Bool("envelope", false, "realize an upper envelope for non-graphic input (Thm 13)")
	oddEven := flag.Bool("oddeven", false, "use the real O(n) odd-even sort instead of the charged oracle")
	printEdges := flag.Bool("print-edges", false, "print the realized edge list")
	flag.Parse()

	degs, err := sequence(*seqFlag, *family, *n, *d, *p, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "degreal:", err)
		os.Exit(2)
	}
	opt := &graphrealize.Options{Seed: *seed}
	if *oddEven {
		opt.Sort = graphrealize.OddEvenSort
	}
	kind := graphrealize.JobDegrees
	switch {
	case *envelope:
		kind = graphrealize.JobUpperEnvelope
	case *explicit:
		kind = graphrealize.JobDegreesExplicit
	}
	if *seeds < 1 {
		*seeds = 1
	}
	seedList := make([]int64, *seeds)
	for i := range seedList {
		seedList[i] = *seed + int64(i)
	}
	jobs := graphrealize.SweepSeeds(graphrealize.Job{Kind: kind, Seq: degs, Opt: opt}, seedList)

	fmt.Printf("input: n=%d Δ=%d Σd=%d graphic=%v\n",
		len(degs), seq.MaxDegree(degs), seq.SumDegrees(degs), graphrealize.IsGraphic(degs))

	results := graphrealize.NewRunner(*workers).RealizeAll(jobs)
	first := results[0]
	if first.Err != nil {
		fmt.Fprintln(os.Stderr, "degreal:", first.Err)
		os.Exit(1)
	}
	if *envelope {
		extra := 0
		for i := range degs {
			extra += first.Envelope[i] - clamp(degs[i], len(degs))
		}
		fmt.Printf("envelope: total discrepancy Σ(d'-d) = %d\n", extra)
	}
	g, stats := first.Graph, first.Stats
	fmt.Printf("realized: m=%d connected=%v\n", g.M(), g.Connected())
	fmt.Printf("cost: %s phases=%d\n", stats, stats.Phases)
	if *seeds > 1 {
		rounds := make([]int, 0, len(results))
		for i, res := range results {
			if res.Err != nil {
				fmt.Fprintf(os.Stderr, "degreal: seed %d: %v\n", seedList[i], res.Err)
				os.Exit(1)
			}
			fmt.Printf("seed=%-4d rounds=%-6d msgs=%-8d maxRecv=%d\n",
				seedList[i], res.Stats.Rounds, res.Stats.Messages, res.Stats.MaxRecv)
			rounds = append(rounds, res.Stats.Rounds)
		}
		sort.Ints(rounds)
		fmt.Printf("sweep: seeds=%d rounds min=%d median=%d max=%d\n",
			len(rounds), rounds[0], rounds[len(rounds)/2], rounds[len(rounds)-1])
	}
	if *printEdges {
		for _, e := range g.Edges() {
			fmt.Printf("%d %d\n", e[0], e[1])
		}
	}
}

func clamp(v, n int) int {
	if v < 0 {
		return 0
	}
	if v > n-1 {
		return n - 1
	}
	return v
}

func sequence(seqFlag, family string, n, d int, p float64, seed int64) ([]int, error) {
	if seqFlag != "" {
		parts := strings.Split(seqFlag, ",")
		out := make([]int, 0, len(parts))
		for _, s := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return nil, fmt.Errorf("bad sequence entry %q", s)
			}
			out = append(out, v)
		}
		return out, nil
	}
	switch family {
	case "regular":
		if (n*d)%2 != 0 || d >= n {
			return nil, fmt.Errorf("regular family needs d < n and n·d even (n=%d d=%d)", n, d)
		}
		return gen.Regular(n, d), nil
	case "random":
		return gen.FromRandomGraph(n, p, seed), nil
	case "powerlaw":
		return gen.PowerLaw(n, 2.2, n/4, seed), nil
	case "starheavy":
		return gen.StarHeavy(n, 2, n/2), nil
	case "bimodal":
		return gen.Bimodal(n, 2, n/8), nil
	default:
		return nil, fmt.Errorf("unknown family %q", family)
	}
}
