// Command benchrecord converts `go test -bench -benchmem` output into the
// committed BENCH_<sha>.json snapshot format: per-benchmark medians of
// ns/op, B/op, and allocs/op plus enough environment metadata to judge
// whether two snapshots are comparable. It exists so scheduler-driver claims
// in the README ("flat is Nx faster than pool at n=65536") are backed by a
// machine-readable artifact regenerated with `make bench-record`.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... > bench.txt
//	benchrecord -in bench.txt -commit $(git rev-parse --short HEAD) -out BENCH_abc123.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"flag"

	"graphrealize/internal/benchcmp"
)

func main() {
	in := flag.String("in", "", "bench output file (required)")
	out := flag.String("out", "", "JSON snapshot to write (default stdout)")
	commit := flag.String("commit", "", "commit the snapshot was taken at")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "benchrecord: -in is required")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrecord: %v\n", err)
		os.Exit(2)
	}
	results, err := benchcmp.ParseResults(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrecord: %v\n", err)
		os.Exit(2)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchrecord: no benchmark lines in input")
		os.Exit(2)
	}
	snapshot := struct {
		Commit  string            `json:"commit,omitempty"`
		Go      string            `json:"go"`
		GOOS    string            `json:"goos"`
		GOARCH  string            `json:"goarch"`
		CPUs    int               `json:"cpus"`
		Results []benchcmp.Result `json:"results"`
	}{*commit, runtime.Version(), runtime.GOOS, runtime.GOARCH, runtime.NumCPU(), results}

	buf, err := json.MarshalIndent(snapshot, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrecord: %v\n", err)
		os.Exit(2)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchrecord: %v\n", err)
		os.Exit(2)
	}
}
