// Command grserved serves graph realizations over HTTP: the facade's
// algorithms (§4–§6 of the paper) behind a sharded Runner with a bounded
// admission queue, per-job deadlines, and a result cache, plus an
// asynchronous job API (submit → poll/stream → cancel) for realizations too
// long to hold a connection open. See internal/serve for the API and
// README.md for curl examples.
//
// Usage:
//
//	grserved                                  # :8080, GOMAXPROCS workers
//	grserved -addr :9090 -workers 8 -queue 64
//	grserved -job-timeout 10s -max-n 2048 -quiet
//	grserved -job-ttl 2m -job-gc 15s -max-jobs 1024
//	grserved -data-dir /var/lib/grserved       # durable jobs + crash recovery
//
// With -data-dir set, async job state is shadowed to an append-only WAL plus
// periodic snapshots in that directory: after a crash (even kill -9), a
// restart on the same directory serves completed jobs' results from disk and
// re-queues jobs that were in flight, re-running them deterministically from
// their recorded seeds. Empty -data-dir (the default) keeps jobs in memory
// only, exactly as before.
//
// The server drains in-flight requests and async jobs on SIGINT/SIGTERM and
// exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"graphrealize"
	"graphrealize/internal/jobs"
	"graphrealize/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent realization jobs (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 256, "admitted jobs waiting for a worker before 429s (-1 = unbounded)")
	jobTimeout := flag.Duration("job-timeout", 60*time.Second, "per-job execution deadline (0 = none)")
	maxN := flag.Int("max-n", 4096, "largest accepted sequence length")
	maxSeeds := flag.Int("max-seeds", 64, "largest accepted sweep seed count")
	cacheSize := flag.Int("cache", graphrealize.DefaultCacheSize, "result-cache capacity")
	asyncTimeout := flag.Duration("async-job-timeout", 15*time.Minute, "per-job deadline for async jobs (0 = same as -job-timeout, negative = none)")
	jobTTL := flag.Duration("job-ttl", 5*time.Minute, "async job retention after completion")
	jobGC := flag.Duration("job-gc", 0, "async job GC sweep interval (0 = job-ttl/4, capped at 30s)")
	maxJobs := flag.Int("max-jobs", 4096, "retained async job records before eviction/backpressure")
	dataDir := flag.String("data-dir", "", "directory for durable async job state (empty = in-memory only)")
	scheduler := flag.String("scheduler", "barrier", "default simulator driver for requests that don't pick one: barrier, pool or flat")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	pprofAddr := flag.String("pprof-addr", "", "separate listen address for net/http/pprof (empty = disabled)")
	quiet := flag.Bool("quiet", false, "suppress per-request logging")
	flag.Parse()

	logger := log.New(os.Stderr, "grserved: ", log.LstdFlags)
	defSched, err := graphrealize.ParseScheduler(*scheduler)
	if err != nil {
		logger.Fatalf("-scheduler: %v", err)
	}
	runner := graphrealize.NewRunnerConfig(graphrealize.RunnerConfig{
		Workers:    *workers,
		Queue:      *queue,
		JobTimeout: *jobTimeout,
		CacheSize:  *cacheSize,
	})
	var store jobs.Store
	if *dataDir != "" {
		fs, err := jobs.OpenFileStore(*dataDir)
		if err != nil {
			logger.Fatalf("open data dir %s: %v", *dataDir, err)
		}
		store = fs
	}
	manager, err := jobs.Open(jobs.Config{
		Backend:    runner,
		Retention:  *jobTTL,
		GCInterval: *jobGC,
		MaxJobs:    *maxJobs,
		JobTimeout: *asyncTimeout,
		Store:      store,
	})
	if err != nil {
		logger.Fatalf("recover jobs from %s: %v", *dataDir, err)
	}
	if *dataDir != "" {
		js := manager.StatsSnapshot()
		logger.Printf("durable jobs in %s: recovered %d terminal, re-queued %d in-flight (%d corrupt WAL records dropped)",
			*dataDir, js.RecoveredTerminal, js.RecoveredRequeued, js.Store.ReplayErrors)
	}
	cfg := serve.Config{
		Backend:          runner,
		Jobs:             manager,
		MaxN:             *maxN,
		MaxSeeds:         *maxSeeds,
		DefaultScheduler: defSched,
	}
	if !*quiet {
		// One structured JSON record per request on stderr: trace_id, route,
		// method, path, status, elapsed_ms. Pipe-friendly (jq) and greppable
		// by the trace IDs echoed in X-Request-Id.
		cfg.Logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}

	// pprof gets its own listener so profiling endpoints are never exposed on
	// the service address; bind it to loopback in production.
	if *pprofAddr != "" {
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{
			Addr:              *pprofAddr,
			Handler:           pm,
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			if err := psrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("pprof: %v", err)
			}
		}()
		logger.Printf("pprof listening on %s", *pprofAddr)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           serve.New(cfg).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Printf("listening on %s (workers=%d queue=%d job-timeout=%s max-n=%d job-ttl=%s scheduler=%s)",
		*addr, max(*workers, 0), *queue, *jobTimeout, *maxN, *jobTTL, defSched)
	if *workers <= 0 {
		logger.Printf("worker pool sized to GOMAXPROCS=%d", runtime.GOMAXPROCS(0))
	}

	select {
	case err := <-errc:
		logger.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	// One drain budget covers the HTTP listener and the job manager, drained
	// concurrently: an open SSE stream only ends when its job terminates, so
	// draining the manager strictly after srv.Shutdown would deadlock until
	// the budget expired and then force-cancel jobs that could have finished
	// in time.
	logger.Printf("shutting down, draining for up to %s", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	drainDone := make(chan error, 1)
	go func() { drainDone <- manager.Close(shutdownCtx) }()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Printf("shutdown: %v", err)
	}
	if err := <-drainDone; err != nil {
		logger.Printf("async drain forced cancellation: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatalf("serve: %v", err)
	}
	st := runner.Stats()
	js := manager.StatsSnapshot()
	logger.Printf("drained: %d completed, %d cache hits, %d rejected, %d failed; async: %d retained, %d evicted",
		st.Completed, st.CacheHits, st.Rejected, st.Failed, js.Retained, js.Evictions)
}
