// Command grserved serves graph realizations over HTTP: the facade's
// algorithms (§4–§6 of the paper) behind a sharded Runner with a bounded
// admission queue, per-job deadlines, and a result cache, plus an
// asynchronous job API (submit → poll/stream → cancel) for realizations too
// long to hold a connection open. See internal/serve for the API and
// README.md for curl examples.
//
// Usage:
//
//	grserved                                  # :8080, GOMAXPROCS workers
//	grserved -addr :9090 -workers 8 -queue 64
//	grserved -job-timeout 10s -max-n 2048 -quiet
//	grserved -job-ttl 2m -job-gc 15s -max-jobs 1024
//	grserved -data-dir /var/lib/grserved       # durable jobs + crash recovery
//
// With -data-dir set, async job state is shadowed to an append-only WAL plus
// periodic snapshots in that directory: after a crash (even kill -9), a
// restart on the same directory serves completed jobs' results from disk and
// re-queues jobs that were in flight, re-running them deterministically from
// their recorded seeds. Empty -data-dir (the default) keeps jobs in memory
// only, exactly as before.
//
// Cluster mode (CLUSTER.md): `grserved -coordinator` serves the same API
// with no local engine — jobs are routed to joined workers by rendezvous
// hashing on their cache key, with failover to the next-ranked worker when
// one dies. `grserved -join http://coordinator:port` runs a normal worker
// that registers and heartbeats:
//
//	grserved -coordinator -addr :8100                 # the front door
//	grserved -addr :8101 -join http://127.0.0.1:8100  # worker 1
//	grserved -addr :8102 -join http://127.0.0.1:8100  # worker 2
//
// The server drains in-flight requests and async jobs on SIGINT/SIGTERM and
// exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"graphrealize"
	"graphrealize/internal/cluster"
	"graphrealize/internal/jobs"
	"graphrealize/internal/serve"
)

// backendAPI is the union of the serving and job-manager backend seams,
// satisfied by both a local *graphrealize.Runner and a *cluster.Backend.
type backendAPI interface {
	SubmitCtx(ctx context.Context, j graphrealize.Job) (<-chan graphrealize.Result, error)
	SubmitAllCtx(ctx context.Context, jobs []graphrealize.Job) ([]<-chan graphrealize.Result, error)
	SubmitReplayCtx(ctx context.Context, j graphrealize.Job) (<-chan graphrealize.Result, error)
	Stats() graphrealize.RunnerStats
}

// deriveAdvertise turns a listen address into the default URL the
// coordinator can reach this worker at: wildcard hosts become loopback
// (single-machine clusters are the default topology; multi-host workers set
// -advertise explicitly).
func deriveAdvertise(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil || port == "" {
		return ""
	}
	switch host {
	case "", "::", "0.0.0.0":
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent realization jobs (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 256, "admitted jobs waiting for a worker before 429s (-1 = unbounded)")
	jobTimeout := flag.Duration("job-timeout", 60*time.Second, "per-job execution deadline (0 = none)")
	maxN := flag.Int("max-n", 4096, "largest accepted sequence length")
	maxSeeds := flag.Int("max-seeds", 64, "largest accepted sweep seed count")
	cacheSize := flag.Int("cache", graphrealize.DefaultCacheSize, "result-cache capacity")
	asyncTimeout := flag.Duration("async-job-timeout", 15*time.Minute, "per-job deadline for async jobs (0 = same as -job-timeout, negative = none)")
	jobTTL := flag.Duration("job-ttl", 5*time.Minute, "async job retention after completion")
	jobGC := flag.Duration("job-gc", 0, "async job GC sweep interval (0 = job-ttl/4, capped at 30s)")
	maxJobs := flag.Int("max-jobs", 4096, "retained async job records before eviction/backpressure")
	dataDir := flag.String("data-dir", "", "directory for durable async job state (empty = in-memory only)")
	scheduler := flag.String("scheduler", "barrier", "default simulator driver for requests that don't pick one: barrier, pool or flat")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	pprofAddr := flag.String("pprof-addr", "", "separate listen address for net/http/pprof (empty = disabled)")
	coordinator := flag.Bool("coordinator", false, "run as a cluster coordinator: no local engine, jobs route to joined workers")
	join := flag.String("join", "", "coordinator base URL to join as a worker (e.g. http://127.0.0.1:8100)")
	advertise := flag.String("advertise", "", "base URL the coordinator reaches this worker at (default derived from -addr)")
	workerName := flag.String("worker-name", "", "stable cluster identity of this worker (default: the advertise URL)")
	heartbeat := flag.Duration("heartbeat", time.Second, "worker heartbeat interval when joined")
	suspectAfter := flag.Duration("suspect-after", 3*time.Second, "coordinator: heartbeat silence before a worker turns suspect")
	deadAfter := flag.Duration("dead-after", 10*time.Second, "coordinator: heartbeat silence before a worker turns dead (unroutable)")
	quiet := flag.Bool("quiet", false, "suppress per-request logging")
	flag.Parse()

	logger := log.New(os.Stderr, "grserved: ", log.LstdFlags)
	defSched, err := graphrealize.ParseScheduler(*scheduler)
	if err != nil {
		logger.Fatalf("-scheduler: %v", err)
	}
	if *coordinator && *join != "" {
		logger.Fatalf("-coordinator and -join are mutually exclusive (a coordinator is never also a worker)")
	}

	// The backend is the one seam that changes with the role: a coordinator
	// routes jobs to its registered workers, everything else executes
	// locally. The serving and job-manager layers are identical either way.
	var backend backendAPI
	var clusterBackend *cluster.Backend
	if *coordinator {
		registry := cluster.NewRegistry(cluster.RegistryConfig{
			SuspectAfter: *suspectAfter,
			DeadAfter:    *deadAfter,
		})
		clusterBackend = cluster.NewBackend(cluster.BackendConfig{
			Registry: registry,
			Logf:     logger.Printf,
		})
		backend = clusterBackend
	} else {
		backend = graphrealize.NewRunnerConfig(graphrealize.RunnerConfig{
			Workers:    *workers,
			Queue:      *queue,
			JobTimeout: *jobTimeout,
			CacheSize:  *cacheSize,
		})
	}
	var store jobs.Store
	if *dataDir != "" {
		fs, err := jobs.OpenFileStore(*dataDir)
		if err != nil {
			logger.Fatalf("open data dir %s: %v", *dataDir, err)
		}
		store = fs
	}
	jcfg := jobs.Config{
		Backend:    backend,
		Retention:  *jobTTL,
		GCInterval: *jobGC,
		MaxJobs:    *maxJobs,
		JobTimeout: *asyncTimeout,
		Store:      store,
	}
	if *join != "" {
		// A cluster worker never re-runs in-flight jobs from its own durable
		// store: the coordinator owns routing and has already failed its
		// work over to a live worker (CLUSTER.md §6.4).
		jcfg.Owns = func(graphrealize.Job) bool { return false }
	}
	manager, err := jobs.Open(jcfg)
	if err != nil {
		logger.Fatalf("recover jobs from %s: %v", *dataDir, err)
	}
	if *dataDir != "" {
		js := manager.StatsSnapshot()
		logger.Printf("durable jobs in %s: recovered %d terminal, re-queued %d in-flight, %d reassigned (%d corrupt WAL records dropped)",
			*dataDir, js.RecoveredTerminal, js.RecoveredRequeued, js.RecoveredReassigned, js.Store.ReplayErrors)
	}
	cfg := serve.Config{
		Backend:          backend,
		Jobs:             manager,
		MaxN:             *maxN,
		MaxSeeds:         *maxSeeds,
		DefaultScheduler: defSched,
		Cluster:          clusterBackend,
	}
	if !*quiet {
		// One structured JSON record per request on stderr: trace_id, route,
		// method, path, status, elapsed_ms. Pipe-friendly (jq) and greppable
		// by the trace IDs echoed in X-Request-Id.
		cfg.Logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}

	// pprof gets its own listener so profiling endpoints are never exposed on
	// the service address; bind it to loopback in production.
	if *pprofAddr != "" {
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{
			Addr:              *pprofAddr,
			Handler:           pm,
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			if err := psrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("pprof: %v", err)
			}
		}()
		logger.Printf("pprof listening on %s", *pprofAddr)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           serve.New(cfg).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	if *coordinator {
		logger.Printf("coordinator listening on %s (suspect-after=%s dead-after=%s max-n=%d job-ttl=%s)",
			*addr, *suspectAfter, *deadAfter, *maxN, *jobTTL)
	} else {
		logger.Printf("listening on %s (workers=%d queue=%d job-timeout=%s max-n=%d job-ttl=%s scheduler=%s)",
			*addr, max(*workers, 0), *queue, *jobTimeout, *maxN, *jobTTL, defSched)
		if *workers <= 0 {
			logger.Printf("worker pool sized to GOMAXPROCS=%d", runtime.GOMAXPROCS(0))
		}
	}

	if *join != "" {
		adv := *advertise
		if adv == "" {
			adv = deriveAdvertise(*addr)
		}
		if adv == "" {
			logger.Fatalf("-join: cannot derive an advertise URL from -addr %q; set -advertise", *addr)
		}
		name := *workerName
		if name == "" {
			name = adv
		}
		joiner, err := cluster.NewJoiner(cluster.JoinConfig{
			Coordinator: *join,
			Name:        name,
			Advertise:   adv,
			Capacity:    backend.Stats().Workers,
			Interval:    *heartbeat,
			Stats:       backend.Stats,
			Logf:        logger.Printf,
		})
		if err != nil {
			logger.Fatalf("-join: %v", err)
		}
		go joiner.Run(ctx)
	}

	select {
	case err := <-errc:
		logger.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	// One drain budget covers the HTTP listener and the job manager, drained
	// concurrently: an open SSE stream only ends when its job terminates, so
	// draining the manager strictly after srv.Shutdown would deadlock until
	// the budget expired and then force-cancel jobs that could have finished
	// in time.
	logger.Printf("shutting down, draining for up to %s", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	drainDone := make(chan error, 1)
	go func() { drainDone <- manager.Close(shutdownCtx) }()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Printf("shutdown: %v", err)
	}
	if err := <-drainDone; err != nil {
		logger.Printf("async drain forced cancellation: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatalf("serve: %v", err)
	}
	st := backend.Stats()
	js := manager.StatsSnapshot()
	logger.Printf("drained: %d completed, %d cache hits, %d rejected, %d failed; async: %d retained, %d evicted",
		st.Completed, st.CacheHits, st.Rejected, st.Failed, js.Retained, js.Evictions)
}
