package graphrealize

import (
	"testing"
	"time"
)

// TestRouteKeyGolden pins RouteKey's exact string form: it is the cluster
// routing identity (CLUSTER.md §4), so its layout is wire-stable — the
// worked example of CLUSTER.md §4.3 embeds this very string, and changing
// the format silently remaps every key to a different worker.
func TestRouteKeyGolden(t *testing.T) {
	j := Job{Kind: JobDegrees, Seq: []int{3, 3, 2, 2, 1, 1}, Opt: &Options{Seed: 7}}
	if got, want := j.RouteKey(), "degrees|060604040202|m0.s7.tfalse.c0.o0.r0.barrier"; got != want {
		t.Fatalf("RouteKey = %q, want %q (CLUSTER.md §4.3)", got, want)
	}
}

// TestRouteKeyMatchesCacheIdentity: RouteKey carries exactly the fields the
// Runner's result cache keys on (CLUSTER.md §4.1) — outcome-neutral fields
// (Label, TraceID, Timeout, the Progress/Profile hooks) must not move a job
// between workers, and every outcome-affecting option must.
func TestRouteKeyMatchesCacheIdentity(t *testing.T) {
	base := Job{Kind: JobDegrees, Seq: []int{3, 3, 2, 2, 1, 1}, Opt: &Options{Seed: 7}}
	key := base.RouteKey()

	// Outcome-neutral fields: same key.
	decorated := base
	decorated.Label = "sweep-row-3"
	decorated.TraceID = "req-123"
	decorated.Timeout = 5 * time.Second
	opt := *base.Opt
	opt.Progress = func(int, int) {}
	opt.Profile = func(_, _, _ time.Duration) {}
	decorated.Opt = &opt
	if decorated.RouteKey() != key {
		t.Fatal("outcome-neutral fields changed the route key; identical jobs would shard apart")
	}

	// A nil Opt keys like the zero Options.
	zeroA := Job{Kind: JobDegrees, Seq: []int{2, 1, 1}}
	zeroB := Job{Kind: JobDegrees, Seq: []int{2, 1, 1}, Opt: &Options{}}
	if zeroA.RouteKey() != zeroB.RouteKey() {
		t.Fatal("nil Opt and zero Options produced different keys")
	}

	// Every outcome-affecting field moves the key.
	variants := map[string]Job{
		"kind":       {Kind: JobDegreesExplicit, Seq: base.Seq, Opt: base.Opt},
		"seq":        {Kind: JobDegrees, Seq: []int{3, 3, 2, 2, 2, 2}, Opt: base.Opt},
		"seed":       {Kind: JobDegrees, Seq: base.Seq, Opt: &Options{Seed: 8}},
		"model":      {Kind: JobDegrees, Seq: base.Seq, Opt: &Options{Seed: 7, Model: NCC1}},
		"strict":     {Kind: JobDegrees, Seq: base.Seq, Opt: &Options{Seed: 7, Strict: true}},
		"cap_mul":    {Kind: JobDegrees, Seq: base.Seq, Opt: &Options{Seed: 7, CapMul: 16}},
		"sort":       {Kind: JobDegrees, Seq: base.Seq, Opt: &Options{Seed: 7, Sort: OddEvenSort}},
		"max_rounds": {Kind: JobDegrees, Seq: base.Seq, Opt: &Options{Seed: 7, MaxRounds: 99}},
		"scheduler":  {Kind: JobDegrees, Seq: base.Seq, Opt: &Options{Seed: 7, Scheduler: FlatScheduler}},
	}
	for field, j := range variants {
		if j.RouteKey() == key {
			t.Errorf("changing %s did not change the route key; distinct results would collide on one cache shard", field)
		}
	}
}
