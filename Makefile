# Reproducible one-liners for the graphrealize reproduction.
#
#   make build          compile everything
#   make test           tier-1 verify: build + full test suite
#   make lint           grlint analyzer suite over ./... (DESIGN.md §12)
#   make ci             local approximation of the CI gates: fmt, vet, lint, test, race
#   make race           race-test every package
#   make bench          full benchmark pass (benchstat-comparable output)
#   make sweep          multi-seed realization sweep on all cores
#   make tables         regenerate every experiment table (quick scale)
#   make serve          run the HTTP realization service
#   make loadgen        drive a running service with mixed traffic
#   make bench-compare  bench HEAD vs BASE and gate like CI does
#   make bench-record   record the scheduler-driver snapshot (BENCH_<sha>.json)
#
# Service knobs: ADDR, QUEUE, JOB_TIMEOUT, DATA_DIR (non-empty = durable
# jobs with crash recovery); loadgen knobs: CONC, REQS, MIX.

GO          ?= go
SCALE       ?= quick
SEEDS       ?= 16
WORKERS     ?= 0
N           ?= 256
FAMILY      ?= powerlaw
ADDR        ?= 127.0.0.1:8080
QUEUE       ?= 256
JOB_TIMEOUT ?= 60s
DATA_DIR    ?=
CONC        ?= 64
REQS        ?= 500
MIX         ?= degree,tree,connectivity
BASE        ?= main
SCHEDULER   ?= barrier
BENCH_ARGS  := -short -run '^$$' -bench . -benchtime 3x -count 5 . ./internal/wire
# The merge base may predate internal/wire; benchgate only compares
# benchmarks present on both sides, so the base run probes for the package.
BENCH_ARGS_BASE := -short -run '^$$' -bench . -benchtime 3x -count 5 . $$([ -d internal/wire ] && echo ./internal/wire)

.PHONY: build test lint ci race bench bench-sched bench-record sweep tables vet fmt-check serve loadgen loadgen-async bench-compare clean

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The repo's own analyzer suite (internal/lint, cmd/grlint): determinism and
# wire invariants enforced at compile time. Non-empty diagnostics exit 1.
lint:
	$(GO) run ./cmd/grlint ./...

# Every gate a PR must pass that runs in minutes: what the CI test and lint
# jobs check, minus the multi-version matrix and the e2e/bench jobs.
ci: fmt-check vet lint test race

fmt-check:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi

race:
	$(GO) test -race ./...

# Pipe consecutive runs into benchstat to compare engine changes; the
# delivery/barrier benchmarks track allocs/op, the batch benchmark the
# Runner speedup over a serial loop. -short skips the ~40s/iteration
# n=65536 batch-runner case; bench-sched measures exactly that, once,
# under both drivers.
bench:
	$(GO) test -short -run '^$$' -bench . -benchmem ./...

bench-sched:
	$(GO) test -run '^$$' -bench BenchmarkBatchRunner -benchtime 1x -count 2 .

# Record the committed scheduler-driver benchmark snapshot: BatchRunner at
# every size plus the pure wake/park cost (BarrierOverhead), all three
# drivers, with -benchmem so allocation deltas are part of the record. The
# output file name carries the commit so stale snapshots are obvious.
bench-record:
	$(GO) test -run '^$$' -bench 'BenchmarkBatchRunner|BenchmarkBarrierOverhead' \
		-benchtime 1x -count 3 -benchmem . ./internal/ncc/ > /tmp/graphrealize-bench-record.txt
	cat /tmp/graphrealize-bench-record.txt
	$(GO) run ./cmd/benchrecord -in /tmp/graphrealize-bench-record.txt \
		-commit $$(git rev-parse --short HEAD) -out BENCH_$$(git rev-parse --short HEAD).json
	@echo wrote BENCH_$$(git rev-parse --short HEAD).json

sweep:
	$(GO) run ./cmd/degreal -n $(N) -family $(FAMILY) -seeds $(SEEDS) -workers $(WORKERS)

tables:
	$(GO) run ./cmd/benchtab -scale $(SCALE) -workers $(WORKERS) -scheduler $(SCHEDULER)

# The HTTP realization service and its load generator (same commands the CI
# e2e-smoke job runs). Set DATA_DIR to persist async jobs across restarts.
serve:
	$(GO) run ./cmd/grserved -addr $(ADDR) -workers $(WORKERS) -queue $(QUEUE) -job-timeout $(JOB_TIMEOUT) $(if $(DATA_DIR),-data-dir $(DATA_DIR))

loadgen:
	$(GO) run ./cmd/grloadgen -addr http://$(ADDR) -c $(CONC) -requests $(REQS) -mix $(MIX)

# Same traffic, but every other mix cycle goes through the async job API
# (submit/poll/stream/cancel) and reports end-to-end job latency.
loadgen-async:
	$(GO) run ./cmd/grloadgen -addr http://$(ADDR) -c $(CONC) -requests $(REQS) -mix $(MIX) -async

# Bench HEAD against BASE (default: main) with the exact commands and gate
# the CI bench-regression job uses. Requires a clean worktree for BASE.
# Plain redirects (no tee) so a failing bench run fails the target under
# shells without pipefail.
bench-compare:
	$(GO) test $(BENCH_ARGS) > /tmp/graphrealize-bench-head.txt
	cat /tmp/graphrealize-bench-head.txt
	git worktree add --force /tmp/graphrealize-bench-base $(BASE)
	(cd /tmp/graphrealize-bench-base && $(GO) test $(BENCH_ARGS_BASE)) > /tmp/graphrealize-bench-base.txt; \
		status=$$?; git worktree remove --force /tmp/graphrealize-bench-base; \
		exit $$status
	cat /tmp/graphrealize-bench-base.txt
	$(GO) run ./cmd/benchgate -base /tmp/graphrealize-bench-base.txt \
		-head /tmp/graphrealize-bench-head.txt \
		-threshold 30 -match 'BenchmarkBatchRealization|BenchmarkWire' -json bench.json

clean:
	$(GO) clean ./...
