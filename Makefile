# Reproducible one-liners for the graphrealize reproduction.
#
#   make build   compile everything
#   make test    tier-1 verify: build + full test suite
#   make race    race-test the engine and the service layer
#   make bench   full benchmark pass (benchstat-comparable output)
#   make sweep   multi-seed realization sweep on all cores
#   make tables  regenerate every experiment table (quick scale)

GO      ?= go
SCALE   ?= quick
SEEDS   ?= 16
WORKERS ?= 0
N       ?= 256
FAMILY  ?= powerlaw

.PHONY: build test race bench sweep tables vet clean

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/ncc/ .

# Pipe consecutive runs into benchstat to compare engine changes; the
# delivery/barrier benchmarks track allocs/op, the batch benchmark the
# Runner speedup over a serial loop.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

sweep:
	$(GO) run ./cmd/degreal -n $(N) -family $(FAMILY) -seeds $(SEEDS) -workers $(WORKERS)

tables:
	$(GO) run ./cmd/benchtab -scale $(SCALE) -workers $(WORKERS)

clean:
	$(GO) clean ./...
