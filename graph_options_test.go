package graphrealize

// Direct coverage for the public Graph helpers (round-tripping through
// fromInternal/internal) and for Options normalization — behavior the facade
// tests only exercise incidentally.

import (
	"context"
	"testing"

	"graphrealize/internal/graph"
	"graphrealize/internal/ncc"
	"graphrealize/internal/sortnet"
)

// TestGraphFromInternalRoundTrip builds a known graph (C5 plus a chord),
// converts it through fromInternal, and checks every helper against hand
// counts — then converts back via internal() and compares edge sets.
func TestGraphFromInternalRoundTrip(t *testing.T) {
	ig := graph.New(5)
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}, {1, 3}}
	for _, e := range edges {
		if err := ig.AddEdge(e[0], e[1]); err != nil {
			t.Fatalf("add %v: %v", e, err)
		}
	}
	g := fromInternal(ig)
	if g.N != 5 {
		t.Fatalf("N = %d", g.N)
	}
	if g.M() != len(edges) {
		t.Fatalf("M = %d, want %d", g.M(), len(edges))
	}
	wantDeg := []int{2, 3, 2, 3, 2}
	for i, deg := range g.Degrees() {
		if deg != wantDeg[i] {
			t.Fatalf("degree[%d] = %d, want %d", i, deg, wantDeg[i])
		}
	}
	got := g.Edges()
	want := [][2]int{{0, 1}, {0, 4}, {1, 2}, {1, 3}, {2, 3}, {3, 4}}
	if len(got) != len(want) {
		t.Fatalf("edges %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d: %v, want %v (Edges must be sorted (u<v) pairs)", i, got[i], want[i])
		}
	}
	if !g.Connected() || g.IsTree() {
		t.Fatal("C5+chord is connected and not a tree")
	}
	if d := g.Diameter(); d != 2 {
		t.Fatalf("diameter = %d, want 2", d)
	}
	// Vertex 2 is on the cycle: two edge-disjoint paths to 0; vertices 1–3
	// share the chord plus both cycle arcs.
	if c := g.EdgeConnectivity(0, 2); c != 2 {
		t.Fatalf("EdgeConnectivity(0,2) = %d, want 2", c)
	}
	if c := g.EdgeConnectivity(1, 3); c != 3 {
		t.Fatalf("EdgeConnectivity(1,3) = %d, want 3", c)
	}
	// Round-trip: internal() must reproduce the same edge set.
	back := g.internal()
	be := back.Edges()
	if len(be) != len(want) {
		t.Fatalf("round-trip edge count %d, want %d", len(be), len(want))
	}
	for i := range want {
		if be[i] != want[i] {
			t.Fatalf("round-trip edge %d: %v, want %v", i, be[i], want[i])
		}
	}
}

// TestGraphHelpersDisconnected covers the disconnected conventions:
// Diameter -1, Connected false, per-component edge connectivity 0.
func TestGraphHelpersDisconnected(t *testing.T) {
	g, err := HavelHakimi([]int{1, 1, 1, 1}) // any realization: two disjoint edges
	if err != nil {
		t.Fatal(err)
	}
	if g.Connected() {
		t.Fatal("four degree-1 vertices cannot be connected")
	}
	if d := g.Diameter(); d != -1 {
		t.Fatalf("disconnected diameter = %d, want -1", d)
	}
	// Find two vertices in different components: 0's unique neighbor is the
	// only vertex in its component.
	other := -1
	for v := 1; v < 4; v++ {
		if v != g.Adj[0][0] {
			other = v
			break
		}
	}
	if c := g.EdgeConnectivity(0, other); c != 0 {
		t.Fatalf("cross-component connectivity = %d, want 0", c)
	}
}

// TestTreeDiameterMatchesDiameter checks the cheap two-BFS tree diameter
// against the exact all-sources sweep on a realized tree.
func TestTreeDiameterMatchesDiameter(t *testing.T) {
	g, err := ChainTree([]int{3, 3, 2, 1, 1, 1, 1, 2}) // Σ = 14 = 2(n−1)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsTree() {
		t.Fatal("chain tree is not a tree")
	}
	if td, d := g.TreeDiameter(), g.Diameter(); td != d {
		t.Fatalf("TreeDiameter %d != Diameter %d", td, d)
	}
}

func TestOptionsNormDefaults(t *testing.T) {
	var nilOpt *Options
	// Options carries a func field (Progress), so compare via the comparable
	// cache-key projection.
	if got := nilOpt.norm(); got.key() != (Options{}).key() {
		t.Fatalf("nil options must normalize to the zero value, got %+v", got)
	}
	o := &Options{Model: NCC1, Seed: 9, Strict: true, CapMul: 3, Sort: MergeSort, MaxRounds: 99}
	got := o.norm()
	if got.key() != o.key() {
		t.Fatalf("norm changed the options: %+v vs %+v", got, *o)
	}
	got.Seed = 1000
	if o.Seed != 9 {
		t.Fatal("norm must return a copy, not alias the caller's options")
	}
}

func TestOptionsSimConfig(t *testing.T) {
	o := Options{Model: NCC1, Seed: 5, Strict: true, CapMul: 2, MaxRounds: 123}
	cfg := o.simConfig(context.Background(), 7, []any{1, 2})
	if cfg.N != 7 || cfg.Model != ncc.NCC1 || cfg.Seed != 5 || !cfg.Strict ||
		cfg.CapMul != 2 || cfg.MaxRounds != 123 || len(cfg.Inputs) != 2 {
		t.Fatalf("simConfig mapping wrong: %+v", cfg)
	}
	zero := Options{}
	cfg0 := zero.simConfig(context.Background(), 3, nil)
	if cfg0.Model != ncc.NCC0 || cfg0.CapMul != 0 || cfg0.MaxRounds != 0 {
		// CapMul/MaxRounds stay zero here; ncc.New applies the defaults.
		t.Fatalf("zero options must map to zero config fields: %+v", cfg0)
	}
}

func TestOptionsSortMethodMapping(t *testing.T) {
	cases := []struct {
		in   SortMethod
		want sortnet.Method
	}{
		{OracleSort, sortnet.Oracle},
		{OddEvenSort, sortnet.OddEven},
		{MergeSort, sortnet.Merge},
		{SortMethod(42), sortnet.Oracle}, // unknown falls back to the default
	}
	for _, c := range cases {
		if got := (Options{Sort: c.in}).sortMethod(); got != c.want {
			t.Fatalf("sortMethod(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}
